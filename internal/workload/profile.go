// Package workload provides the synthetic benchmark proxies standing in for
// the paper's Table I applications (SPEC CPU 2006, SPEC CPU 2017, and the
// two proprietary server suites).
//
// We cannot run the original binaries (DESIGN.md §2), so each named workload
// is generated from a Profile that dials exactly the properties the paper
// attributes to that benchmark: branch misprediction rate (the flush
// frequency ELF hides), instruction footprint vs. BTB/I-cache reach (the
// server 1 story), recursion and return density (the RET-ELF / server 2
// subtest 2 story), indirect-branch density (IND-ELF), bimodal-hostile
// branch mixes (the COND-ELF omnetpp story), and data-memory footprint and
// pattern (memory-bound behaviour, wrong-path cache pollution).
package workload

import (
	"fmt"

	"elfetch/internal/isa"
	"elfetch/internal/program"
	"elfetch/internal/xrand"
)

// CodeBase is where generated code images start.
const CodeBase = isa.Addr(0x10000)

// BranchMix describes the composition of conditional-branch behaviours in a
// generated program. Fractions need not sum to 1; they are normalised.
type BranchMix struct {
	// Loops: Loop{Trip} backedges — predictable by everything.
	Loops float64
	// Patterned: global-history-correlated branches (HistoryHash) —
	// near-perfect for TAGE, ~50% for a bimodal. High values make
	// COND-ELF risky, reproducing the omnetpp effect.
	Patterned float64
	// Biased: Bernoulli with a strong bias (BiasP) — both predictors get
	// these mostly right, and the coupled bimodal saturates, so COND-ELF
	// speculates confidently and is usually right.
	Biased float64
	// Chaotic: Bernoulli near 50/50 — mispredicted by everything; dials
	// branch MPKI up and with it the flush rate ELF amortises.
	Chaotic float64
	// BiasP is the taken probability of Biased branches (e.g. 0.95).
	BiasP float64
	// ChaosP is the taken probability of Chaotic branches (e.g. 0.6).
	ChaosP float64
}

func (m BranchMix) total() float64 { return m.Loops + m.Patterned + m.Biased + m.Chaotic }

// MemPattern selects the dominant data-access pattern.
type MemPattern int

const (
	// MemStream : sequential/strided, prefetch-friendly.
	MemStream MemPattern = iota
	// MemRandom : uniform random within the footprint.
	MemRandom
	// MemChase : dependent pointer chasing (latency-bound).
	MemChase
	// MemFrame : stack-frame locality (recursion-heavy workloads).
	MemFrame
)

// Profile is the full knob set of the synthetic generator.
type Profile struct {
	// Funcs is the number of generated functions; together with
	// BlockInsts and BlocksPerFunc it sets the instruction footprint.
	Funcs int
	// BlocksPerFunc is the mean number of body blocks per function.
	BlocksPerFunc int
	// BlockInsts is the mean instructions per block.
	BlockInsts int
	// HotFuncs, if non-zero, restricts the main driver to cycling over
	// the first HotFuncs functions most of the time, touching the rest
	// rarely; zero means uniform traversal over all functions (maximum
	// I-side reuse distance — the server 1 configuration).
	HotFuncs int
	// ColdEvery: with HotFuncs set, one in ColdEvery driver iterations
	// visits a cold function (0 = never).
	ColdEvery int

	// Branches.
	Mix BranchMix
	// CondEvery: one conditional branch per ~CondEvery instructions.
	CondEvery int
	// LoopTrip is the mean loop trip count.
	LoopTrip int

	// CallDepth is the maximum call-graph depth (levels).
	CallDepth int
	// CallEvery: one call per ~CallEvery instructions (0 = no calls
	// beyond the driver's).
	CallEvery int
	// Recursive, if true, adds self-recursive functions (server 2
	// subtest 2 / RET-ELF story) with depth ~RecDepth.
	Recursive bool
	RecDepth  int

	// IndirectEvery: one indirect branch per ~IndirectEvery instructions
	// (0 = none). IndirectTargets is the target-set size and
	// IndirectKind the selection model.
	IndirectEvery   int
	IndirectTargets int
	IndirectKind    IndirectKind

	// Memory.
	LoadEvery  int // one load per ~LoadEvery instructions
	StoreEvery int // one store per ~StoreEvery instructions
	MemBytes   uint64
	MemKind    MemPattern
	// Mem2Kind/Mem2Frac/Mem2Bytes blend in a secondary access pattern:
	// e.g. a recursion-heavy workload (frame locality) with a side of
	// cache-capacity random traffic, so wrong-path loads have something
	// to evict (the server 2 subtest 2 story).
	Mem2Kind  MemPattern
	Mem2Frac  float64
	Mem2Bytes uint64
	// AliasSlots, if non-zero, adds same-address store→load pairs across
	// call boundaries through this many shared slots — the raw material
	// for memory-order violations (the milc / RET-ELF pathology).
	AliasSlots int

	// ChainFrac is the probability an instruction depends on its
	// predecessor's result (ILP dial; higher = more serial).
	ChainFrac float64
	// MulDivFrac / SIMDFrac divert that fraction of plain ALU
	// instructions to long-latency or vector units.
	MulDivFrac, SIMDFrac float64
}

// IndirectKind selects the indirect target model.
type IndirectKind int

const (
	IndirectMono IndirectKind = iota
	IndirectRoundRobin
	IndirectSkewed
	IndirectHistory
	IndirectRandom
)

func (p *Profile) withDefaults() Profile {
	q := *p
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&q.Funcs, 16)
	def(&q.BlocksPerFunc, 4)
	def(&q.BlockInsts, 8)
	def(&q.CondEvery, 8)
	def(&q.LoopTrip, 12)
	def(&q.CallDepth, 2)
	def(&q.LoadEvery, 5)
	def(&q.StoreEvery, 12)
	if q.MemBytes == 0 {
		q.MemBytes = 1 << 20
	}
	if q.Mix.total() == 0 {
		q.Mix = BranchMix{Loops: 0.5, Biased: 0.4, Chaotic: 0.1, BiasP: 0.95, ChaosP: 0.55}
	}
	if q.Mix.BiasP == 0 {
		q.Mix.BiasP = 0.95
	}
	if q.Mix.ChaosP == 0 {
		q.Mix.ChaosP = 0.55
	}
	if q.IndirectTargets == 0 {
		q.IndirectTargets = 4
	}
	if q.RecDepth == 0 {
		q.RecDepth = 8
	}
	return q
}

// Validate reports obviously inconsistent profiles.
func (p *Profile) Validate() error {
	if p.Funcs < 0 || p.BlocksPerFunc < 0 || p.BlockInsts < 0 {
		return fmt.Errorf("workload: negative size parameter")
	}
	if p.ChainFrac < 0 || p.ChainFrac > 1 {
		return fmt.Errorf("workload: ChainFrac %v out of [0,1]", p.ChainFrac)
	}
	m := p.Mix
	for _, f := range []float64{m.Loops, m.Patterned, m.Biased, m.Chaotic} {
		if f < 0 {
			return fmt.Errorf("workload: negative branch-mix fraction")
		}
	}
	return nil
}

// pickBehavior draws a conditional-branch behaviour from the mix.
func (p *Profile) pickBehavior(r *xrand.Rand) program.Behavior {
	m := p.Mix
	t := m.total()
	v := r.Float64() * t
	switch {
	case v < m.Loops:
		trip := 2 + r.Intn(p.LoopTrip*2)
		return program.Loop{Trip: uint64(trip)}
	case v < m.Loops+m.Patterned:
		// Mask width 8..20 bits of global history.
		bits := 8 + r.Intn(13)
		return program.HistoryHash{Mask: (uint64(1)<<bits - 1), Invert: r.Bool(0.5)}
	case v < m.Loops+m.Patterned+m.Biased:
		pTaken := m.BiasP
		if r.Bool(0.5) {
			pTaken = 1 - pTaken
		}
		return program.Bernoulli{P: pTaken, Salt: r.Uint64()}
	default:
		pTaken := m.ChaosP
		if r.Bool(0.5) {
			pTaken = 1 - pTaken
		}
		return program.Bernoulli{P: pTaken, Salt: r.Uint64()}
	}
}

// pickMem draws a memory model.
func (p *Profile) pickMem(r *xrand.Rand, store bool) program.MemModel {
	kind, bytes := p.MemKind, p.MemBytes
	if p.Mem2Frac > 0 && r.Bool(p.Mem2Frac) {
		kind = p.Mem2Kind
		if p.Mem2Bytes != 0 {
			bytes = p.Mem2Bytes
		}
	}
	return p.memModel(r, store, kind, bytes)
}

func (p *Profile) memModel(r *xrand.Rand, store bool, kind MemPattern, bytes uint64) program.MemModel {
	base := program.DataBase
	switch kind {
	case MemRandom:
		return program.RandomIn{Base: base, Size: bytes, Salt: r.Uint64()}
	case MemChase:
		if !store {
			return program.PointerChase{Base: base, Size: bytes, Salt: r.Uint64()}
		}
		return program.RandomIn{Base: base, Size: bytes, Salt: r.Uint64()}
	case MemFrame:
		return program.FrameSlot{Slot: uint64(r.Intn(6)), Frames: uint64(2 + r.Intn(16))}
	default: // MemStream
		stride := uint64(8 << r.Intn(3))
		return program.SeqStream{Base: base + isa.Addr(r.Intn(1<<16))&^7, Size: bytes, Stride: stride}
	}
}

func (p *Profile) pickIndirect(r *xrand.Rand) program.TargetModel {
	switch p.IndirectKind {
	case IndirectRoundRobin:
		return program.RoundRobin{}
	case IndirectSkewed:
		return program.SkewedTarget{Hot: 0.85, Salt: r.Uint64()}
	case IndirectHistory:
		return program.HistoryTarget{Mask: (1 << (6 + r.Intn(8))) - 1}
	case IndirectRandom:
		return program.UniformRandom{Salt: r.Uint64()}
	default:
		return program.FixedTarget{}
	}
}
