package workload

import (
	"fmt"
	"sort"
	"sync"

	"elfetch/internal/program"
	"elfetch/internal/xrand"
)

// Suite names, matching the paper's Table I groupings.
const (
	Suite2K6INT  = "2K6 INT"
	Suite2K6FP   = "2K6 FP"
	Suite2K17INT = "2K17 INT"
	Suite2K17FP  = "2K17 FP"
	SuiteServer1 = "Server_1"
	SuiteServer2 = "Server_2"
)

// Entry is one named workload in the registry.
type Entry struct {
	// Name is the registry key (e.g. "641.leela").
	Name string
	// Suite is the Table I grouping.
	Suite string
	// Notes records which property of the original benchmark this proxy
	// reproduces — the substitution documentation required by DESIGN.md.
	Notes string
	// Profile is the generator configuration.
	Profile Profile
	// Seed fixes the generated program.
	Seed uint64

	once sync.Once
	prog *program.Program
}

// Program returns the generated program, built once and cached.
func (e *Entry) Program() *program.Program {
	e.once.Do(func() { e.prog = MustGenerate(e.Profile, e.Seed) })
	return e.prog
}

var (
	registryMu sync.Mutex
	registry   []*Entry
	byName     = map[string]*Entry{}
)

// mustRegister adds an entry at init time, panicking on a duplicate name
// (a duplicate is a source-level mistake, caught by any test run).
func mustRegister(e *Entry) *Entry {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := byName[e.Name]; dup {
		panic("workload: duplicate registration of " + e.Name)
	}
	e.Seed = xrand.Mix(0xe1f, hashName(e.Name))
	registry = append(registry, e)
	byName[e.Name] = e
	return e
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// All returns every registered workload, in registration order.
func All() []*Entry {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]*Entry, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the workload with the given name.
func Lookup(name string) (*Entry, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	e, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
	return e, nil
}

// Suite returns all workloads of one suite.
func Suite(name string) []*Entry {
	var out []*Entry
	for _, e := range All() {
		if e.Suite == name {
			out = append(out, e)
		}
	}
	return out
}

// Suites returns the suite names present, sorted. Deduplication walks the
// registration-ordered slice rather than ranging a map, so the function
// is deterministic even before the sort.
func Suites() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range All() {
		if !seen[e.Suite] {
			seen[e.Suite] = true
			out = append(out, e.Suite)
		}
	}
	sort.Strings(out)
	return out
}

// FigureSet returns the workload names plotted on the x-axis of Figures
// 6, 7 and 8 (the "workloads that benefit from ELastic Fetching").
func FigureSet() []string {
	return []string{
		"602.gcc_s", "605.mcf_s", "620.omnetpp_s", "631.deepsjeng_s",
		"641.leela_s", "648.exchange2_s", "657.xz_s",
		"server1_subtest_1", "server1_subtest_2", "server1_subtest_3",
		"server2_subtest_1", "server2_subtest_2", "server2_subtest_3",
		"433.milc", "437.leslie3d",
		"401.bzip2", "403.gcc", "445.gobmk", "458.sjeng", "473.astar",
	}
}

// ----- Profile building blocks -----

// lowMPKI: loop/bias dominated, well predicted by everything.
func lowMPKI() BranchMix {
	return BranchMix{Loops: 0.65, Biased: 0.32, Chaotic: 0.03, BiasP: 0.97, ChaosP: 0.6}
}

// midMPKI: some genuinely hard branches.
func midMPKI() BranchMix {
	return BranchMix{Loops: 0.45, Patterned: 0.15, Biased: 0.25, Chaotic: 0.15, BiasP: 0.95, ChaosP: 0.6}
}

// highMPKI: flush-dominated (the ELF sweet spot).
func highMPKI() BranchMix {
	return BranchMix{Loops: 0.25, Patterned: 0.10, Biased: 0.25, Chaotic: 0.40, BiasP: 0.92, ChaosP: 0.55}
}

// bimodalHostile: TAGE-predictable, bimodal-hostile (omnetpp).
func bimodalHostile() BranchMix {
	return BranchMix{Loops: 0.25, Patterned: 0.55, Biased: 0.10, Chaotic: 0.10, BiasP: 0.95, ChaosP: 0.55}
}

// fpCompute: the generic SPEC-FP shape — few hard branches, long loops,
// SIMD-heavy, streaming memory.
func fpCompute(memMB uint64) Profile {
	return Profile{
		Funcs: 12, BlocksPerFunc: 3, BlockInsts: 14,
		Mix: lowMPKI(), CondEvery: 16, LoopTrip: 40,
		CallDepth: 2, LoadEvery: 5, StoreEvery: 10,
		MemBytes: memMB << 20, MemKind: MemStream,
		ChainFrac: 0.25, SIMDFrac: 0.35,
	}
}

// warmBytes caps the cold-fraction footprint so it lives mostly in L2/L3
// (SPEC-like memory behaviour); explicitly memory-bound proxies override it.
func warmBytes(memMB uint64) uint64 {
	if memMB > 6 {
		memMB = 6
	}
	if memMB == 0 {
		memMB = 1
	}
	return memMB << 20
}

// intGeneric: the generic SPEC-INT shape. Data accesses follow the usual
// hot/cold split real programs exhibit: most touches land in an
// L1D-resident hot set, a small fraction wanders the full footprint —
// giving SPEC-like L1D hit rates (90-99%) instead of a memory-bound
// caricature that would drown every front-end effect.
func intGeneric(mix BranchMix, funcs int, memMB uint64) Profile {
	return Profile{
		Funcs: funcs, BlocksPerFunc: 4, BlockInsts: 8,
		Mix: mix, CondEvery: 7, LoopTrip: 12,
		CallDepth: 3, CallEvery: 24,
		LoadEvery: 5, StoreEvery: 11,
		MemBytes: 16 << 10, MemKind: MemRandom, // hot, L1D-resident
		Mem2Kind: MemRandom, Mem2Frac: 0.06, Mem2Bytes: warmBytes(memMB),
		ChainFrac: 0.35, MulDivFrac: 0.02,
	}
}

// ----- Registry: SPEC CPU 2006 (Table I row 1) -----

func init() {
	reg := func(name, suite, notes string, p Profile) {
		mustRegister(&Entry{Name: name, Suite: suite, Notes: notes, Profile: p})
	}

	// --- 2K6 INT ---
	reg("473.astar", Suite2K6INT,
		"path-finding: very high branch MPKI, small I-footprint, pointer data",
		func() Profile {
			p := intGeneric(highMPKI(), 10, 64)
			p.Mix.Chaotic = 0.55
			p.Mem2Kind = MemChase
			p.Mem2Frac = 0.10
			p.ChainFrac = 0.5
			return p
		}())
	reg("401.bzip2", Suite2K6INT,
		"compression: moderate MPKI, tight loops, streaming buffers",
		func() Profile {
			p := intGeneric(midMPKI(), 8, 32)
			p.MemKind = MemStream
			return p
		}())
	reg("403.gcc", Suite2K6INT,
		"compiler: moderate MPKI with a sizeable instruction footprint",
		func() Profile {
			p := intGeneric(midMPKI(), 120, 48)
			p.CallEvery = 16
			return p
		}())
	reg("445.gobmk", Suite2K6INT,
		"go engine: high branch MPKI, recursion-tinged search",
		func() Profile {
			p := intGeneric(highMPKI(), 24, 32)
			p.Recursive = true
			p.RecDepth = 6
			return p
		}())
	reg("458.sjeng", Suite2K6INT,
		"chess: high MPKI plus indirect branches (piece dispatch)",
		func() Profile {
			p := intGeneric(highMPKI(), 20, 32)
			p.IndirectEvery = 40
			p.IndirectTargets = 6
			p.IndirectKind = IndirectHistory
			return p
		}())
	reg("400.perlbench", Suite2K6INT,
		"interpreter: indirect-heavy opcode dispatch, larger footprint",
		func() Profile {
			p := intGeneric(midMPKI(), 80, 32)
			p.IndirectEvery = 24
			p.IndirectTargets = 8
			p.IndirectKind = IndirectSkewed
			return p
		}())
	reg("429.parser", Suite2K6INT,
		"link parser: mid MPKI, pointer-chasing dictionary",
		func() Profile {
			p := intGeneric(midMPKI(), 24, 64)
			p.Mem2Kind = MemChase
			p.Mem2Frac = 0.08
			return p
		}())
	reg("456.hmmer", Suite2K6INT,
		"profile HMM: inner loops, low MPKI, streaming",
		func() Profile {
			p := intGeneric(lowMPKI(), 6, 16)
			p.MemKind = MemStream
			p.LoopTrip = 50
			return p
		}())
	reg("464.h264ref", Suite2K6INT,
		"video encode: low MPKI, SIMD-ish kernels, streaming",
		func() Profile {
			p := fpCompute(24)
			p.SIMDFrac = 0.25
			p.Mix = lowMPKI()
			return p
		}())
	reg("471.omnetpp", Suite2K6INT,
		"discrete event sim: bimodal-hostile branches, virtual dispatch",
		func() Profile {
			p := intGeneric(bimodalHostile(), 48, 24)
			p.IndirectEvery = 48
			p.IndirectKind = IndirectSkewed
			return p
		}())
	reg("483.xalancbmk", Suite2K6INT,
		"XSLT: virtual-call heavy, moderate footprint",
		func() Profile {
			p := intGeneric(midMPKI(), 90, 24)
			p.IndirectEvery = 20
			p.IndirectTargets = 5
			p.IndirectKind = IndirectSkewed
			return p
		}())

	// --- 2K6 FP ---
	reg("433.milc", Suite2K6FP,
		"lattice QCD: low branch MPKI, call/return kernels with "+
			"same-address store→load pairs across calls (the RET-ELF "+
			"memory-order pathology, Section VI-B)",
		func() Profile {
			p := fpCompute(96)
			p.Funcs = 16
			p.CallDepth = 3
			p.CallEvery = 10
			p.BlockInsts = 6
			p.LoopTrip = 6
			p.AliasSlots = 8
			p.StoreEvery = 8
			p.LoadEvery = 5
			return p
		}())
	reg("437.leslie3d", Suite2K6FP,
		"CFD: streaming stencil, essentially perfect branches",
		fpCompute(128))
	reg("410.bwaves06", Suite2K6FP, "CFD solver: streaming, low MPKI", fpCompute(160))
	reg("416.gamess", Suite2K6FP, "quantum chemistry: call-heavy FP", func() Profile {
		p := fpCompute(32)
		p.CallEvery = 20
		p.CallDepth = 3
		return p
	}())
	reg("435.gromacs", Suite2K6FP, "MD: inner-loop FP, low MPKI", fpCompute(48))
	reg("444.namd", Suite2K6FP, "MD: compute-dense, low MPKI", fpCompute(48))
	reg("447.dealII", Suite2K6FP, "FEM: templated C++, mid footprint", func() Profile {
		p := fpCompute(64)
		p.Funcs = 60
		p.Mix = midMPKI()
		return p
	}())
	reg("450.soplex", Suite2K6FP, "LP solver: sparse access, mid MPKI", func() Profile {
		p := fpCompute(96)
		p.MemKind = MemRandom
		p.MemBytes = 24 << 10
		p.Mem2Kind = MemRandom
		p.Mem2Frac = 0.07
		p.Mem2Bytes = 96 << 20
		p.Mix = midMPKI()
		return p
	}())
	reg("453.povray", Suite2K6FP, "ray tracing: branchier FP, recursion", func() Profile {
		p := fpCompute(24)
		p.Mix = midMPKI()
		p.Recursive = true
		p.RecDepth = 5
		return p
	}())
	reg("454.calculix", Suite2K6FP, "FEM: streaming solver", fpCompute(96))
	reg("465.tonto", Suite2K6FP, "quantum chemistry: call-heavy", func() Profile {
		p := fpCompute(48)
		p.CallEvery = 24
		return p
	}())
	reg("481.wrf", Suite2K6FP, "weather: stencil streams", fpCompute(128))
	reg("482.sphinx3", Suite2K6FP, "speech: mixed int/FP, mid MPKI", func() Profile {
		p := fpCompute(32)
		p.Mix = midMPKI()
		return p
	}())
	reg("434.zeusmp", Suite2K6FP, "MHD: stencil streams", fpCompute(128))

	// --- 2K17 INT (the Figure 6-8 x-axis lives here) ---
	reg("600.perlbench_s", Suite2K17INT,
		"interpreter dispatch (as 400.perlbench, larger)",
		func() Profile {
			p := intGeneric(midMPKI(), 110, 48)
			p.IndirectEvery = 20
			p.IndirectTargets = 8
			p.IndirectKind = IndirectSkewed
			return p
		}())
	reg("602.gcc_s", Suite2K17INT,
		"compiler: moderate-high MPKI, big I-footprint — benefits from both "+
			"DCF prefetch and ELF flush hiding",
		func() Profile {
			p := intGeneric(midMPKI(), 160, 64)
			p.Mix.Chaotic = 0.22
			p.CallEvery = 14
			return p
		}())
	reg("605.mcf_s", Suite2K17INT,
		"graph/network simplex: memory-latency bound (pointer chase over a "+
			"GB-scale footprint) with high MPKI that the memory bottleneck masks",
		func() Profile {
			p := intGeneric(highMPKI(), 8, 0)
			p.MemBytes = 1 << 30
			p.MemKind = MemChase
			p.Mem2Frac = 0
			p.ChainFrac = 0.6
			p.LoadEvery = 3
			return p
		}())
	reg("620.omnetpp_s", Suite2K17INT,
		"discrete event sim: TAGE-predictable but bimodal-hostile branches "+
			"(+2 MPKI for the coupled bimodal, Section VI-B) and an L1D-sized "+
			"working set that wrong-path fetches pollute",
		func() Profile {
			p := intGeneric(bimodalHostile(), 56, 0)
			p.MemBytes = 28 << 10 // ~L1D capacity: wrong paths evict useful lines
			p.MemKind = MemRandom
			p.Mem2Frac = 0
			p.IndirectEvery = 64
			p.IndirectKind = IndirectSkewed
			return p
		}())
	reg("623.xalancbmk_s", Suite2K17INT, "XSLT: virtual-call heavy",
		func() Profile {
			p := intGeneric(midMPKI(), 100, 24)
			p.IndirectEvery = 20
			p.IndirectTargets = 5
			p.IndirectKind = IndirectSkewed
			return p
		}())
	reg("625.x264_s", Suite2K17INT, "video encode: low MPKI, streaming",
		func() Profile {
			p := fpCompute(32)
			p.SIMDFrac = 0.3
			return p
		}())
	reg("631.deepsjeng_s", Suite2K17INT,
		"chess search: high MPKI with recursion and transposition-table "+
			"randomness",
		func() Profile {
			p := intGeneric(highMPKI(), 22, 128)
			p.Recursive = true
			p.RecDepth = 8
			p.Mem2Frac = 0.05 // transposition-table lookups miss far
			return p
		}())
	reg("641.leela_s", Suite2K17INT,
		"go MCTS: the paper's best ELF case — very high branch MPKI, small "+
			"I-footprint, modest memory pressure, so flushes dominate and ELF "+
			"hides the extra DCF depth",
		func() Profile {
			p := intGeneric(highMPKI(), 12, 24)
			p.Mix.Chaotic = 0.5
			p.Mix.ChaosP = 0.55
			p.Recursive = true
			p.RecDepth = 5
			return p
		}())
	reg("648.exchange2_s", Suite2K17INT,
		"sudoku solver: deep loops, almost perfectly predicted, tiny memory",
		func() Profile {
			p := intGeneric(lowMPKI(), 6, 4)
			p.LoopTrip = 24
			p.Recursive = true
			p.RecDepth = 9
			return p
		}())
	reg("657.xz_s", Suite2K17INT,
		"compression: moderate MPKI, streaming with match-dependent branches",
		func() Profile {
			p := intGeneric(midMPKI(), 10, 64)
			p.Mix.Chaotic = 0.25
			p.MemKind = MemStream
			return p
		}())

	// --- 2K17 FP ---
	for _, w := range []struct {
		name, notes string
		memMB       uint64
	}{
		{"603.bwaves_s", "CFD: streaming", 192},
		{"607.cactuBSSN_s", "relativity: stencil", 96},
		{"608.namd_s", "MD: compute dense", 48},
		{"610.parest_s", "FEM inverse problems", 64},
		{"611.povray_s", "ray tracing", 24},
		{"619.lbm_s", "lattice Boltzmann: streaming", 192},
		{"621.wrf_s", "weather stencil", 128},
		{"627.cam4_s", "atmosphere model", 96},
		{"628.pop2_s", "ocean model", 96},
		{"638.imagick_s", "image ops: SIMD streaming", 48},
		{"644.nab_s", "molecular modelling", 48},
		{"649.fotonik3d_s", "FDTD: streaming", 128},
		{"654.roms_s", "ocean model: streaming", 128},
	} {
		reg(w.name, Suite2K17FP, w.notes, fpCompute(w.memMB))
	}
	reg("657.blender_s", Suite2K17FP, "render: branchier FP, mid footprint",
		func() Profile {
			p := fpCompute(64)
			p.Funcs = 48
			p.Mix = midMPKI()
			return p
		}())

	// --- Server 1: transaction server with a giant instruction footprint
	// (Section V-A). The uniform sweep over thousands of functions defeats
	// all three BTB levels and the I-cache, so DCF's FAQ prefetching is
	// worth ~40% (Figure 6) and BTB misses expose the Decode→BP1 loop. ---
	srv1 := func(funcs int, mix BranchMix) Profile {
		return Profile{
			Funcs: funcs, BlocksPerFunc: 3, BlockInsts: 16,
			// A hot majority that cycles every iteration plus a cold
			// tail visited periodically: the instruction working set
			// sits mostly within L2-BTB/L2-cache reach but far beyond
			// L0/L1, reproducing the paper's 28/49/71%% per-level BTB
			// hit rates rather than a worst-case uniform sweep.
			HotFuncs: funcs * 3 / 5, ColdEvery: 6,
			Mix: mix, CondEvery: 18, LoopTrip: 3,
			CallDepth: 3, CallEvery: 20,
			LoadEvery: 6, StoreEvery: 12,
			MemBytes: 16 << 10, MemKind: MemRandom,
			Mem2Kind: MemRandom, Mem2Frac: 0.05, Mem2Bytes: 8 << 20,
			ChainFrac:     0.3,
			IndirectEvery: 60, IndirectTargets: 4, IndirectKind: IndirectSkewed,
		}
	}
	reg("server1_subtest_1", SuiteServer1,
		"transaction path, deepest I-footprint (paper: 28/49/71% L0/L1/L2 BTB hit)",
		srv1(820, midMPKI()))
	reg("server1_subtest_2", SuiteServer1,
		"transaction path variant, large I-footprint", srv1(700, midMPKI()))
	reg("server1_subtest_3", SuiteServer1,
		"transaction path variant, large I-footprint with branchier code",
		srv1(600, func() BranchMix { m := midMPKI(); m.Chaotic = 0.22; return m }()))

	// --- Server 2: computation kernels pressuring branch prediction and
	// the data side (Section V-A). ---
	reg("server2_subtest_1", SuiteServer2,
		"compute kernel: high MPKI plus heavy D-side traffic",
		func() Profile {
			p := intGeneric(highMPKI(), 18, 256)
			p.Mem2Frac = 0.12
			p.LoadEvery = 4
			p.AliasSlots = 16
			p.CallEvery = 12
			return p
		}())
	reg("server2_subtest_2", SuiteServer2,
		"recursive kernel: the RET-ELF showcase — deep recursion makes the "+
			"RAS the high-value coupled predictor, while an L1D-sized random "+
			"working set makes wrong coupled bimodal paths costly (RET-ELF "+
			"4.8% > U-ELF 3.7% in the paper)",
		func() Profile {
			p := intGeneric(midMPKI(), 14, 0)
			p.Mix.Patterned = 0.3
			p.Recursive = true
			p.RecDepth = 14
			p.MemKind = MemFrame
			p.Mem2Kind = MemRandom
			p.Mem2Frac = 0.4
			p.Mem2Bytes = 28 << 10
			p.CallEvery = 10
			return p
		}())
	reg("server2_subtest_3", SuiteServer2,
		"graph processing: the paper's highest branch MPKI but memory-bound "+
			"(multi-GB random footprint), so front-end changes move IPC little",
		func() Profile {
			p := intGeneric(highMPKI(), 10, 0)
			p.Mix.Chaotic = 0.6
			p.MemBytes = 2 << 30
			p.MemKind = MemChase
			p.Mem2Frac = 0
			p.ChainFrac = 0.55
			p.LoadEvery = 3
			return p
		}())
}

// Custom wraps an externally-built program (e.g. a JSON profile) as an
// unregistered Entry so the tools can treat it like a named workload.
func Custom(name string, p *program.Program) *Entry {
	e := &Entry{Name: name, Suite: "custom", Notes: "user-defined profile"}
	e.prog = p
	e.once.Do(func() {})
	return e
}
