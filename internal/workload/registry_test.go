package workload

import (
	"testing"

	"elfetch/internal/isa"
	"elfetch/internal/trace"
)

func TestAllWorkloadsBuildAndRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			p := e.Program()
			if p.Len() == 0 {
				t.Fatal("empty program")
			}
			s := trace.NewStream(p)
			var branches, conds, rets, inds, mems int
			const n = 30000
			for i := uint64(0); i < n; i++ {
				d := s.Get(i)
				c := d.SI.Class
				if c.IsBranch() {
					branches++
				}
				if c.IsConditional() {
					conds++
				}
				if c.IsReturn() {
					rets++
				}
				if c.IsIndirect() && !c.IsReturn() {
					inds++
				}
				if c.IsMemory() {
					mems++
				}
				s.Release(i)
			}
			if r := s.Oracle().Restarts; r != 0 {
				t.Errorf("oracle restarted %d times (malformed program)", r)
			}
			if conds == 0 {
				t.Error("no conditional branches executed")
			}
			if mems == 0 {
				t.Error("no memory instructions executed")
			}
			if branches > n/2 {
				t.Errorf("branch density too high: %d/%d", branches, n)
			}
			if e.Profile.Recursive && rets == 0 {
				t.Error("recursive profile executed no returns")
			}
			if e.Profile.IndirectEvery > 0 && inds == 0 {
				t.Error("indirect profile executed no indirect branches")
			}
		})
	}
}

func TestRegistryCoversTableOneSuites(t *testing.T) {
	// Sorted lexicographically, as Suites() documents.
	want := []string{Suite2K17FP, Suite2K17INT, Suite2K6FP, Suite2K6INT, SuiteServer1, SuiteServer2}
	got := Suites()
	if len(got) != len(want) {
		t.Fatalf("Suites() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Suites()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Each suite is populated.
	for _, s := range want {
		if len(Suite(s)) == 0 {
			t.Errorf("suite %q is empty", s)
		}
	}
}

func TestFigureSetResolves(t *testing.T) {
	for _, name := range FigureSet() {
		if _, err := Lookup(name); err != nil {
			t.Errorf("figure-set workload %q: %v", name, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-benchmark"); err == nil {
		t.Error("Lookup of unknown name succeeded")
	}
}

func TestServer1FootprintDwarfsOthers(t *testing.T) {
	srv1, err := Lookup("server1_subtest_1")
	if err != nil {
		t.Fatal(err)
	}
	leela, err := Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	f1 := srv1.Program().FootprintBytes()
	f2 := leela.Program().FootprintBytes()
	// Server 1 must exceed the L1I reach (64KB) by a wide margin while
	// staying within L2-cache scale (the paper's prefetch story).
	if f1 < 150<<10 {
		t.Errorf("server1 footprint = %d bytes, want >= 150KB", f1)
	}
	if f2 > 128<<10 {
		t.Errorf("leela footprint = %d bytes, want small (<128KB)", f2)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	e, err := Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	p1 := MustGenerate(e.Profile, e.Seed)
	p2 := MustGenerate(e.Profile, e.Seed)
	if p1.Len() != p2.Len() || p1.Entry != p2.Entry {
		t.Fatal("same (profile, seed) produced different layouts")
	}
	s1, s2 := trace.NewStream(p1), trace.NewStream(p2)
	for i := uint64(0); i < 20000; i++ {
		a, b := s1.Get(i), s2.Get(i)
		if a.PC != b.PC || a.Taken != b.Taken || a.NextPC != b.NextPC || a.MemAddr != b.MemAddr {
			t.Fatalf("dynamic streams diverge at %d", i)
		}
		s1.Release(i)
		s2.Release(i)
	}
}

func TestSeedsDifferAcrossNames(t *testing.T) {
	seen := map[uint64]string{}
	for _, e := range All() {
		if prev, dup := seen[e.Seed]; dup {
			t.Errorf("workloads %q and %q share seed %d", prev, e.Name, e.Seed)
		}
		seen[e.Seed] = e.Name
	}
}

func TestRecursiveWorkloadReachesDepth(t *testing.T) {
	e, err := Lookup("server2_subtest_2")
	if err != nil {
		t.Fatal(err)
	}
	o := trace.NewOracle(e.Program())
	var d trace.Dyn
	maxDepth := 0
	for i := 0; i < 200000; i++ {
		o.Step(&d)
		if o.Depth() > maxDepth {
			maxDepth = o.Depth()
		}
	}
	if maxDepth < 6 {
		t.Errorf("max call depth = %d, want >= 6 (recursion showcase)", maxDepth)
	}
}

func TestAliasSlotTrafficPresent(t *testing.T) {
	e, err := Lookup("433.milc")
	if err != nil {
		t.Fatal(err)
	}
	s := trace.NewStream(e.Program())
	addrCount := map[isa.Addr]int{}
	for i := uint64(0); i < 100000; i++ {
		d := s.Get(i)
		if d.SI.Class.IsMemory() {
			addrCount[d.MemAddr]++
		}
		s.Release(i)
	}
	// Alias slots produce heavily repeated exact addresses.
	hot := 0
	for _, c := range addrCount {
		if c > 100 {
			hot++
		}
	}
	if hot < 4 {
		t.Errorf("expected >=4 hot alias slots, found %d", hot)
	}
}

func TestProfileValidateRejectsBadValues(t *testing.T) {
	bad := Profile{ChainFrac: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("ChainFrac 1.5 accepted")
	}
	neg := Profile{Funcs: -1}
	if err := neg.Validate(); err == nil {
		t.Error("negative Funcs accepted")
	}
	negMix := Profile{Mix: BranchMix{Loops: -0.1}}
	if err := negMix.Validate(); err == nil {
		t.Error("negative mix accepted")
	}
}
