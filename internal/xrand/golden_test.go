package xrand

import (
	"math"
	"testing"
)

// The simulator's reproducibility story leans on xrand being the single
// sanctioned randomness source (elflint's determinism check enforces
// that), which only helps if xrand's streams are themselves stable
// across Go releases and platforms. SplitMix64 is pure 64-bit integer
// arithmetic — nothing here touches math/rand, hashing seeds, or any
// other surface Go is free to change — so the exact draws below are part
// of the package's contract: workload seeds recorded in EXPERIMENTS.md
// must regenerate identical programs forever.

// golden first draws of Uint64 for fixed seeds.
var goldenUint64 = map[uint64][]uint64{
	0: {
		0x5cc60547776902ba, 0x2a4c004b6ae97d7f, 0xfccac7c96d3a1e78, 0x93df7413971b78d9,
		0x494f4724213d3138, 0x89c60553f1f89532, 0x40aaff22001da75e, 0x91c993691eec28c6,
	},
	0xe1f: {
		0x521f56e9df483b90, 0x7c5f6d2698fe2527, 0x2d73fd1660a737b1, 0xff6d3532b45181c5,
		0x7105c40e7792c476, 0x2dc276c9ca926d4d, 0x814d3e2566ba87c9, 0xa5eb91043b4eaace,
	},
}

func TestUint64GoldenStream(t *testing.T) {
	for seed, want := range goldenUint64 {
		r := New(seed)
		for i, w := range want {
			if got := r.Uint64(); got != w {
				t.Errorf("New(%#x) draw %d = %#016x, want %#016x", seed, i, got, w)
			}
		}
	}
}

func TestIntnGoldenStream(t *testing.T) {
	r := New(42)
	want := []int{83, 58, 51, 40, 56, 41, 89, 83}
	for i, w := range want {
		if got := r.Intn(100); got != w {
			t.Errorf("New(42) Intn draw %d = %d, want %d", i, got, w)
		}
	}
}

func TestFloat64GoldenStream(t *testing.T) {
	r := New(42)
	want := []float64{
		0.39659886578219861, 0.63089751946793937,
		0.62213843036572924, 0.19156560782196641,
	}
	for i, w := range want {
		got := r.Float64()
		if got != w {
			t.Errorf("New(42) Float64 draw %d = %.17g, want %.17g", i, got, w)
		}
		if got < 0 || got >= 1 || math.IsNaN(got) {
			t.Errorf("Float64 draw %d = %v out of [0,1)", i, got)
		}
	}
}

func TestMixGolden(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{1, 2, 0x75f07022672b12b5},
		{0xe1f, 0xdeadbeef, 0x2153a3dabbff0987},
	}
	for _, c := range cases {
		if got := Mix(c.a, c.b); got != c.want {
			t.Errorf("Mix(%#x, %#x) = %#016x, want %#016x", c.a, c.b, got, c.want)
		}
	}
}

// TestSeedDecorrelation spot-checks that nearby seeds do not share stream
// prefixes (the Seed scrambler's whole purpose).
func TestSeedDecorrelation(t *testing.T) {
	seen := map[uint64]uint64{}
	for seed := uint64(0); seed < 64; seed++ {
		r := New(seed)
		first := r.Uint64()
		if prev, dup := seen[first]; dup {
			t.Fatalf("seeds %d and %d share first draw %#x", prev, seed, first)
		}
		seen[first] = seed
	}
}
