// Package xrand provides a tiny, allocation-free, deterministic PRNG used by
// workload behaviour models and generators.
//
// The simulator must be bit-for-bit reproducible across runs (the paper's
// results come from fixed SimPoints; ours come from fixed seeds), so all
// randomness flows through explicitly seeded xrand streams — never the global
// math/rand state and never wall-clock seeding.
package xrand

// Rand is a SplitMix64 generator. The zero value is not a valid generator;
// use New or Seed.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) Rand {
	var r Rand
	r.Seed(seed)
	return r
}

// Seed resets the generator to a deterministic stream derived from seed.
func (r *Rand) Seed(seed uint64) {
	// Avoid the all-zero fixed point and decorrelate nearby seeds.
	r.state = seed*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Mix hashes two values into one; useful for deriving per-object seeds from
// a base seed plus an identifier.
func Mix(a, b uint64) uint64 {
	z := a ^ (b * 0xff51afd7ed558ccd)
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}
