package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		v := r.Intn(int(n))
		return v >= 0 && v < int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r := New(1)
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	n, trials := 0, 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			n++
		}
	}
	frac := float64(n) / float64(trials)
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bool(0.3) frequency = %v, want ~0.3", frac)
	}
}

func TestUint64Distribution(t *testing.T) {
	// Crude uniformity check: bucket the top 3 bits.
	r := New(123)
	var buckets [8]int
	const trials = 80000
	for i := 0; i < trials; i++ {
		buckets[r.Uint64()>>61]++
	}
	for i, c := range buckets {
		frac := float64(c) / trials
		if frac < 0.10 || frac > 0.15 {
			t.Errorf("bucket %d frequency %v, want ~0.125", i, frac)
		}
	}
}

func TestMixIsDeterministicAndSpread(t *testing.T) {
	if Mix(1, 2) != Mix(1, 2) {
		t.Error("Mix not deterministic")
	}
	if Mix(1, 2) == Mix(1, 3) || Mix(1, 2) == Mix(2, 2) {
		t.Error("Mix collisions on trivially different inputs")
	}
}
