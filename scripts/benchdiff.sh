#!/usr/bin/env sh
# benchdiff: measure the current tree's bench trajectory and compare it
# against a baseline BENCH_*.json point (DESIGN.md §17).
#
# Usage:
#   scripts/benchdiff.sh [baseline.json]
#
# With no argument the newest checked-in BENCH_*.json is the baseline.
# Exit status 1 means a blocking regression: per-cell IPC drift (the
# simulator is deterministic, so any drift is a behaviour change),
# allocs/cycle growth (machine-independent), or — when the baseline was
# recorded on this same host — a >5% geomean throughput drop. Cross-host
# wall-clock changes are reported as warnings only.
set -eu
cd "$(dirname "$0")/.."

baseline="${1:-}"
if [ -z "$baseline" ]; then
    # Newest trajectory point by sequence number.
    baseline=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
fi
if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
    echo "benchdiff: no baseline BENCH_*.json found (record one with: go run ./cmd/elfbench -bench-out BENCH_0001.json)" >&2
    exit 2
fi

current=$(mktemp /tmp/benchdiff.XXXXXX.json)
trap 'rm -f "$current"' EXIT

echo "benchdiff: baseline $baseline"
go run ./cmd/elfbench -bench-out "$current" >/dev/null
go run ./cmd/elfbench -bench-compare "$baseline,$current"
