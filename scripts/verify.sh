#!/usr/bin/env sh
# Tier-1 verify: formatting, build + vet + invariant lint + full tests,
# plus race-checked runs of the concurrent packages (the scheduler, the
# eval matrix runner, the lock-free metrics registry, and the pipeline's
# probe/tracer paths, which elfd traced jobs exercise concurrently).
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "verify: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go build ./...
go vet ./...
go run ./cmd/elflint ./...
go test ./...
go test -race ./internal/sched/... ./internal/eval/... ./internal/obs/... ./internal/pipeline/...
echo "verify: OK"
