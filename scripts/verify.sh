#!/usr/bin/env sh
# Tier-1 verify: formatting, build + vet + invariant lint + full tests,
# plus race-checked runs of the concurrent packages (the scheduler, the
# eval matrix runner, the execution backends with their fleet retry/
# requeue machinery, the lock-free metrics registry, the pipeline's
# probe/tracer paths, and elfd's HTTP surface including the 3-worker
# fleet end-to-end test).
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "verify: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go build ./...
go vet ./...
go run ./cmd/elflint ./...
go test ./...
go test -race ./internal/sched/... ./internal/eval/... ./internal/exec/... ./internal/obs/... ./internal/pipeline/... ./cmd/elfd/...
echo "verify: OK"
