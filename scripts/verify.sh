#!/usr/bin/env sh
# Tier-1 verify: formatting, build + vet + invariant lint + full tests,
# plus race-checked runs of the concurrent packages (the scheduler, the
# eval matrix runner, the execution backends with their fleet retry/
# requeue machinery, the lock-free metrics registry and flight recorder,
# the persistent result store, the pipeline's probe/tracer paths, and
# elfd's HTTP surface including the 3-worker fleet and
# fleet-observability end-to-end tests).
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "verify: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go build ./...
go vet ./...
go run ./cmd/elflint ./...
# The CFG-based concurrency suite (DESIGN.md §16) gated by name, so a
# regression in one of these checks fails with its name in the log even
# if someone trims the default check list above.
go run ./cmd/elflint -checks goroleak,closecheck,lockheld,atomicmix ./...
# Analyzer self-test: every fixture mini-module must still produce
# findings — a check that stops firing on its own fixture is dead code.
go run ./cmd/elflint -fixtures internal/lint/testdata/src
go test ./...
go test -race ./internal/sched/... ./internal/eval/... ./internal/exec/... ./internal/obs/... ./internal/pipeline/... ./internal/store/... ./cmd/elfd/...
# Observability gates, named so a failure is legible on its own: the
# federation merge golden (the fleet /metrics view is a wire format) and
# the 3-worker fleet observability end-to-end, race-checked.
go test -count=1 -run 'TestFleetMetricsGolden|TestHistogramExpositionUnderConcurrentObservers' ./internal/obs/
go test -race -count=1 -run TestFleetObservabilityE2E ./cmd/elfd/
# Persistent-store gates (DESIGN.md §15): the warm-restart end-to-end
# (a Figure 6 grid rerun against the same store dir re-simulates nothing
# and is byte-identical) and the crash-safety contract (a torn final
# record is tolerated on open), race-checked.
go test -race -count=1 -run TestWarmRestartE2E ./internal/exec/
go test -race -count=1 -run 'TestDiskTruncatedTailTolerated|TestDiskCorruptTailChecksum' ./internal/store/
# Concurrency-hygiene gates (DESIGN.md §16): fleet Close must stop its
# health-prober goroutines, and the fleet/peer HTTP paths must drain
# response bodies so keep-alive connections are actually reused.
go test -race -count=1 -run 'TestFleetCloseStopsGoroutines|TestFleetPostReusesConnections' ./internal/exec/
go test -race -count=1 -run TestPeerGetReusesConnections ./internal/store/
echo "verify: OK"
